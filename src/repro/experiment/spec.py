"""Declarative experiment specifications.

An :class:`ExperimentSpec` is the single, serializable description of one
deployment of the replicated state machine: which protocol, which sites (and
the latency matrix between them), each site's clock model, the client
workload, an optional fault schedule, and the run durations.  The same spec
runs unchanged on the discrete-event simulator and on the asyncio runtime
(see :mod:`repro.experiment.deployment`), and round-trips through plain
dictionaries, JSON, and TOML files — every new scenario is a data file, not a
new code path.

Validation happens eagerly at construction time, using the protocol
capability metadata from :mod:`repro.protocols.registry`: a leaderless
protocol with a ``leader_site``, an imbalanced workload without an
``origin_site``, or a fault schedule naming an unknown site are all rejected
before anything is deployed.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from ..analysis.ec2 import EC2_SITES, ec2_latency_matrix
from ..config import BatchingOptions, ClusterSpec, ProtocolConfig
from ..errors import ConfigurationError
from ..net.latency import LatencyMatrix
from ..protocols.registry import protocol_capabilities
from ..types import Micros, ReplicaId, ms_to_micros

#: Workload scenarios understood by the backends (see
#: :mod:`repro.workload.scenarios`).
SCENARIOS: tuple[str, ...] = ("balanced", "imbalanced", "saturating")

#: State-machine applications selectable per spec.
APPS: tuple[str, ...] = ("kv", "append-log", "null")

#: Clock model kinds selectable per site.
CLOCK_KINDS: tuple[str, ...] = ("perfect", "skewed", "drifting")

#: Fault event kinds understood by both experiment backends.
FAULT_KINDS: tuple[str, ...] = ("crash", "recover", "partition", "isolate", "clock-jump")

#: Key→shard placement strategies (see :mod:`repro.shard.router`).
PLACEMENTS: tuple[str, ...] = ("hash", "range")


@dataclass(frozen=True, slots=True)
class ClockSpec:
    """Clock model of one site (perfect unless configured otherwise)."""

    kind: str = "perfect"
    offset_ms: float = 0.0
    drift_ppm: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in CLOCK_KINDS:
            raise ConfigurationError(
                f"unknown clock kind {self.kind!r}; one of {CLOCK_KINDS}"
            )
        if self.kind == "perfect" and (self.offset_ms or self.drift_ppm):
            raise ConfigurationError(
                "a perfect clock cannot have an offset or drift; "
                "use kind='skewed' or kind='drifting'"
            )
        if self.kind == "skewed" and self.drift_ppm:
            raise ConfigurationError("a skewed clock has no drift; use kind='drifting'")


@dataclass(frozen=True, slots=True)
class WorkloadSpec:
    """The client workload attached to the deployment.

    ``scenario`` selects the paper's client models: ``balanced`` (closed-loop
    clients at every site, Figures 1-4), ``imbalanced`` (clients only at
    ``origin_site``, Figures 5-6), or ``saturating`` (window-based clients
    keeping every site saturated, Figure 8).  ``app`` selects the replicated
    application: the key-value store (``kv``, clients issue random updates),
    an append-only log over opaque payloads (``append-log``), or a no-op
    state machine (``null``, for pure protocol-throughput runs).
    """

    scenario: str = "balanced"
    clients_per_site: int = 12
    payload_size: int = 64
    think_time_min_ms: float = 0.0
    think_time_max_ms: float = 80.0
    origin_site: Optional[str] = None
    outstanding_per_site: int = 64
    app: str = "kv"

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ConfigurationError(
                f"unknown workload scenario {self.scenario!r}; one of {SCENARIOS}"
            )
        if self.app not in APPS:
            raise ConfigurationError(f"unknown app {self.app!r}; one of {APPS}")
        if self.clients_per_site <= 0:
            raise ConfigurationError("clients_per_site must be positive")
        if self.outstanding_per_site <= 0:
            raise ConfigurationError("outstanding_per_site must be positive")
        if self.payload_size < 0:
            raise ConfigurationError("payload_size must be non-negative")
        if self.think_time_max_ms < self.think_time_min_ms:
            raise ConfigurationError("think_time_max_ms must be >= think_time_min_ms")
        if self.scenario == "imbalanced" and self.origin_site is None:
            raise ConfigurationError("an imbalanced workload needs an origin_site")
        if self.scenario != "imbalanced" and self.origin_site is not None:
            raise ConfigurationError(
                f"origin_site only applies to the imbalanced scenario, "
                f"not {self.scenario!r}"
            )


@dataclass(frozen=True, slots=True)
class FaultSpec:
    """One scripted fault event (both backends understand every kind).

    ``clock-jump`` steps one site's physical clock by ``offset_ms`` (positive
    or negative) at ``at_s``; only protocols with the needs-clocks capability
    react to it, which is exactly what consistency checks want to probe.
    """

    kind: str
    at_s: float
    site: str
    peer: Optional[str] = None
    heal_at_s: Optional[float] = None
    rejoin: bool = False
    offset_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}"
            )
        if self.at_s < 0:
            raise ConfigurationError("fault at_s must be non-negative")
        if self.kind == "partition" and self.peer is None:
            raise ConfigurationError("a partition fault needs a peer site")
        if self.kind != "partition" and self.peer is not None:
            raise ConfigurationError(f"peer only applies to partitions, not {self.kind!r}")
        if self.heal_at_s is not None and self.kind not in ("partition", "isolate"):
            raise ConfigurationError("heal_at_s only applies to partition/isolate faults")
        if self.heal_at_s is not None and self.heal_at_s <= self.at_s:
            raise ConfigurationError("heal_at_s must be after at_s")
        if self.rejoin and self.kind != "recover":
            raise ConfigurationError("rejoin only applies to recover faults")
        if self.kind == "clock-jump" and not self.offset_ms:
            raise ConfigurationError("a clock-jump fault needs a non-zero offset_ms")
        if self.kind != "clock-jump" and self.offset_ms:
            raise ConfigurationError(
                f"offset_ms only applies to clock-jump faults, not {self.kind!r}"
            )


@dataclass(frozen=True, slots=True)
class ShardOverride:
    """Per-shard deviations from the base spec (seed and/or protocol).

    ``shard`` is the zero-based shard index the override applies to.  An
    override with neither a ``seed`` nor a ``protocol`` would be a silent
    no-op, so it is rejected.
    """

    shard: int
    seed: Optional[int] = None
    protocol: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.shard, int) or isinstance(self.shard, bool):
            raise ConfigurationError(
                f"override shard index must be an integer, got {self.shard!r}"
            )
        if self.shard < 0:
            raise ConfigurationError(
                f"override shard index must be >= 0, got {self.shard}"
            )
        if self.seed is None and self.protocol is None:
            raise ConfigurationError(
                f"override for shard {self.shard} sets neither seed nor protocol"
            )
        if self.protocol is not None:
            protocol_capabilities(self.protocol)  # raises on unknown protocols


@dataclass(frozen=True, slots=True)
class ShardingSpec:
    """Partition the keyspace over N independent protocol groups.

    Every shard deploys the full site list as its own replica group (its own
    total order); clients are routed by key, so each key lives on exactly one
    shard.  ``placement`` selects the key→shard function: ``hash`` spreads
    keys uniformly (CRC-32 of the key), ``range`` preserves lexicographic
    locality (contiguous key ranges per shard).  ``overrides`` lets single
    shards deviate from the base spec's seed or protocol.
    """

    shards: int = 1
    placement: str = "hash"
    overrides: tuple[ShardOverride, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", tuple(self.overrides))
        if not isinstance(self.shards, int) or isinstance(self.shards, bool):
            raise ConfigurationError(f"shards must be an integer, got {self.shards!r}")
        if self.shards < 1:
            raise ConfigurationError(f"shards must be >= 1, got {self.shards}")
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"unknown placement {self.placement!r}; one of {PLACEMENTS}"
            )
        seen: set[int] = set()
        for override in self.overrides:
            if override.shard >= self.shards:
                raise ConfigurationError(
                    f"override names shard {override.shard}, but only "
                    f"{self.shards} shards are deployed"
                )
            if override.shard in seen:
                raise ConfigurationError(
                    f"duplicate overrides for shard {override.shard}"
                )
            seen.add(override.shard)

    def override_for(self, shard: int) -> Optional[ShardOverride]:
        for override in self.overrides:
            if override.shard == shard:
                return override
        return None

    def seed_for(self, shard: int, base_seed: int) -> int:
        """The seed of one shard group: base + shard unless overridden."""
        override = self.override_for(shard)
        if override is not None and override.seed is not None:
            return override.seed
        return base_seed + shard

    def protocol_for(self, shard: int, base_protocol: str) -> str:
        override = self.override_for(shard)
        if override is not None and override.protocol is not None:
            return override.protocol
        return base_protocol


@dataclass(frozen=True, slots=True)
class BatchingSpec:
    """The ``[batching]`` table: real command batching and pipelining.

    Both backends implement these semantics identically:

    * ``max_batch`` — most client commands agreed on as one
      :class:`~repro.protocols.records.CommandBatch` (one protocol round,
      one wire message per batch).  ``1`` disables batching.
    * ``window_us`` — opportunistic accumulation window.  ``0`` (the
      default) batches whatever is already queued and never waits — the
      same semantics as the simulator cost model's
      :attr:`~repro.config.ProtocolConfig.batch_window` default; a positive
      window trades commit latency for larger batches.
    * ``pipeline_depth`` — commands each workload client keeps in flight
      without awaiting the previous commit (message pipelining; asyncio
      backend — the simulator's window/saturating clients already model
      outstanding windows explicitly).

    Consistency results are unchanged: the checker, the stable log, and the
    per-replica execution orders all see the constituent commands
    individually.
    """

    max_batch: int = 1
    window_us: int = 0
    pipeline_depth: int = 1

    def __post_init__(self) -> None:
        self.options()  # eager validation with the runtime's own rules

    def options(self) -> BatchingOptions:
        """The runtime-layer options object both backends consume."""
        return BatchingOptions(
            max_batch=self.max_batch,
            window_us=self.window_us,
            pipeline_depth=self.pipeline_depth,
        )


@dataclass(frozen=True, slots=True)
class RuntimeSpec:
    """The ``[runtime]`` table: event-loop tuning for the live backends.

    * ``uvloop`` — run the asyncio backend under the `uvloop
      <https://github.com/MagicStack/uvloop>`_ event-loop implementation
      when the package is installed.  Opt-in and degradation-safe: when
      uvloop is not importable the run proceeds on the stdlib loop and the
      result's metadata records which loop actually ran
      (``metadata["event_loop"]``).  Inert on the sim backend (no event
      loop) and on the proc backend's supervisor (workers are separate
      interpreters).
    """

    uvloop: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.uvloop, bool):
            raise ConfigurationError(
                f"runtime.uvloop must be a boolean, got {self.uvloop!r}"
            )


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """Optional CPU/batching cost model (throughput experiments)."""

    recv_fixed: float = 6.0
    recv_per_byte: float = 0.006
    send_fixed: float = 6.0
    send_per_byte: float = 0.006
    client_fixed: float = 2.0


@dataclass(frozen=True, slots=True)
class ProcessesSpec:
    """The ``[processes]`` table: multi-process deployment parameters.

    Consumed by the ``proc`` backend (:mod:`repro.launch`), which runs every
    replica — and, composed with ``[sharding]``, every shard group's replicas
    — as its own OS process over real TCP.  Inert on the sim and async
    backends, so one spec file moves freely between all three.

    * ``host`` — the interface replicas bind and the supervisor listens on.
      Processes are always co-located on one machine in this repo, so the
      loopback default is right unless a firewall policy says otherwise.
    * ``startup_timeout_s`` — how long the supervisor waits for each phase of
      a worker's handshake (spawn → hello → bound → running) before declaring
      the deployment failed and tearing everything down.
    * ``shutdown_grace_s`` — how long a worker gets to drain and exit after
      the supervisor asks (then SIGTERM, then after another grace SIGKILL —
      teardown always terminates).
    """

    host: str = "127.0.0.1"
    startup_timeout_s: float = 20.0
    shutdown_grace_s: float = 5.0

    def __post_init__(self) -> None:
        if not self.host:
            raise ConfigurationError("processes.host must be non-empty")
        if self.startup_timeout_s <= 0:
            raise ConfigurationError("processes.startup_timeout_s must be positive")
        if self.shutdown_grace_s <= 0:
            raise ConfigurationError("processes.shutdown_grace_s must be positive")


@dataclass(frozen=True)
class ExperimentSpec:
    """A complete, declarative description of one experiment run.

    The total simulated (or scaled wall-clock) run time is ``warmup_s +
    duration_s``; measurements taken during the warmup are discarded.
    """

    name: str
    protocol: str
    sites: tuple[str, ...]
    leader_site: Optional[str] = None
    latency: str = "ec2"
    one_way_ms: float = 0.05
    jitter_fraction: float = 0.02
    clocks: tuple[tuple[str, ClockSpec], ...] = ()
    workload: WorkloadSpec = field(default_factory=WorkloadSpec)
    faults: tuple[FaultSpec, ...] = ()
    cpu: Optional[CpuSpec] = None
    duration_s: float = 8.0
    warmup_s: float = 2.0
    seed: int = 42
    clocktime_interval_ms: float = 5.0
    wait_for_clock: bool = True
    cdf_sites: tuple[str, ...] = ()
    #: Record an operation history (invoke/ok/fail events plus per-replica
    #: apply orders) into the result, for :mod:`repro.checker`.
    record_history: bool = False
    #: Partition the keyspace over independent protocol groups
    #: (see :mod:`repro.shard`); ``None`` deploys a single group.
    sharding: Optional[ShardingSpec] = None
    #: Real command batching / pipelining on both backends; ``None`` (or
    #: ``max_batch = 1``) runs one protocol round per command.  Composes
    #: with ``sharding``: every shard group batches independently.
    batching: Optional[BatchingSpec] = None
    #: Multi-process deployment parameters for the ``proc`` backend
    #: (:mod:`repro.launch`); ``None`` means its defaults.  Inert on the
    #: sim and async backends.
    processes: Optional[ProcessesSpec] = None
    #: Event-loop tuning for the asyncio backend (``[runtime]``); ``None``
    #: means the stdlib loop.  Inert on the sim backend.
    runtime: Optional[RuntimeSpec] = None

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("an experiment needs a non-empty name")
        object.__setattr__(self, "sites", tuple(self.sites))
        object.__setattr__(self, "cdf_sites", tuple(self.cdf_sites))
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(
            self,
            "clocks",
            tuple((site, clock) for site, clock in self.clocks),
        )
        if len(self.sites) == 0:
            raise ConfigurationError("an experiment needs at least one site")
        if len(set(self.sites)) != len(self.sites):
            raise ConfigurationError(f"duplicate sites: {list(self.sites)}")
        if self.duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")
        if self.warmup_s < 0:
            raise ConfigurationError("warmup_s must be non-negative")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter_fraction must be within [0, 1]")
        if self.clocktime_interval_ms <= 0:
            raise ConfigurationError("clocktime_interval_ms must be positive")
        if self.latency not in ("ec2", "uniform"):
            raise ConfigurationError(
                f"unknown latency model {self.latency!r}; 'ec2' or 'uniform'"
            )
        if self.latency == "uniform" and self.one_way_ms < 0:
            raise ConfigurationError("one_way_ms must be non-negative")
        if self.latency == "ec2":
            unknown = [s for s in self.sites if s not in EC2_SITES]
            if unknown:
                raise ConfigurationError(
                    f"sites {unknown} are not EC2 sites {list(EC2_SITES)}; "
                    "use latency='uniform' for custom site names"
                )

        # Capability-driven protocol checks (raises on unknown protocols).
        caps = protocol_capabilities(self.protocol)
        if (
            self.batching is not None
            and self.batching.max_batch > 1
            and not caps.batching
        ):
            raise ConfigurationError(
                f"protocol {self.protocol!r} does not support command batching; "
                "remove the [batching] table or set max_batch = 1"
            )
        if caps.leader_based:
            if self.leader_site is not None and self.leader_site not in self.sites:
                raise ConfigurationError(
                    f"leader site {self.leader_site!r} is not among {list(self.sites)}"
                )
        elif self.leader_site is not None:
            raise ConfigurationError(
                f"protocol {self.protocol!r} is leaderless; remove leader_site"
            )
        wants_rejoin = any(fault.rejoin for fault in self.faults)
        if wants_rejoin and not caps.supports_reconfiguration:
            raise ConfigurationError(
                f"protocol {self.protocol!r} does not support reconfiguration; "
                "recover faults cannot use rejoin=true"
            )
        if self.sharding is not None and wants_rejoin:
            for override in self.sharding.overrides:
                if override.protocol is not None and not protocol_capabilities(
                    override.protocol
                ).supports_reconfiguration:
                    raise ConfigurationError(
                        f"shard {override.shard} overrides the protocol to "
                        f"{override.protocol!r}, which does not support "
                        "reconfiguration; recover faults cannot use rejoin=true"
                    )

        # Cross-references between sections and the site list.
        for site, _clock in self.clocks:
            if site not in self.sites:
                raise ConfigurationError(f"clock for unknown site {site!r}")
        if len({site for site, _ in self.clocks}) != len(self.clocks):
            raise ConfigurationError("duplicate clock entries for a site")
        if (
            self.workload.origin_site is not None
            and self.workload.origin_site not in self.sites
        ):
            raise ConfigurationError(
                f"workload origin {self.workload.origin_site!r} is not among "
                f"{list(self.sites)}"
            )
        for fault in self.faults:
            if fault.site not in self.sites:
                raise ConfigurationError(f"fault names unknown site {fault.site!r}")
            if fault.peer is not None and fault.peer not in self.sites:
                raise ConfigurationError(f"fault names unknown peer {fault.peer!r}")
        unknown_cdf = [s for s in self.cdf_sites if s not in self.sites]
        if unknown_cdf:
            raise ConfigurationError(f"cdf_sites {unknown_cdf} are not deployed sites")

    # ------------------------------------------------------------------
    # Derived deployment objects
    # ------------------------------------------------------------------

    @property
    def total_runtime_micros(self) -> Micros:
        return int((self.warmup_s + self.duration_s) * 1_000_000)

    @property
    def warmup_micros(self) -> Micros:
        return int(self.warmup_s * 1_000_000)

    def effective_leader_site(self) -> Optional[str]:
        """The leader site, defaulting to the first site for leader-based
        protocols; ``None`` for leaderless ones."""
        if not protocol_capabilities(self.protocol).leader_based:
            return None
        return self.leader_site or self.sites[0]

    def cluster_spec(self) -> ClusterSpec:
        return ClusterSpec.from_sites(list(self.sites))

    def latency_matrix(self) -> LatencyMatrix:
        if self.latency == "ec2":
            return ec2_latency_matrix(self.sites)
        return LatencyMatrix.uniform(self.sites, one_way=ms_to_micros(self.one_way_ms))

    def protocol_config(self) -> ProtocolConfig:
        spec = self.cluster_spec()
        leader_site = self.effective_leader_site()
        leader = spec.by_site(leader_site).replica_id if leader_site else 0
        return ProtocolConfig(
            leader=leader,
            clocktime_interval=ms_to_micros(self.clocktime_interval_ms),
            wait_for_clock=self.wait_for_clock,
        )

    def clock_for_site(self, site: str) -> ClockSpec:
        for name, clock in self.clocks:
            if name == site:
                return clock
        return ClockSpec()

    def clock_offsets(self) -> dict[ReplicaId, Micros]:
        spec = self.cluster_spec()
        return {
            spec.by_site(site).replica_id: ms_to_micros(clock.offset_ms)
            for site, clock in self.clocks
            if clock.offset_ms
        }

    def clock_drift_ppm(self) -> dict[ReplicaId, float]:
        spec = self.cluster_spec()
        return {
            spec.by_site(site).replica_id: clock.drift_ppm
            for site, clock in self.clocks
            if clock.drift_ppm
        }

    def with_protocol(self, protocol: str, name: Optional[str] = None) -> "ExperimentSpec":
        """A copy of this spec for a different protocol (comparison runs).

        The leader site is dropped when the target protocol is leaderless and
        defaulted when one is required, so one base spec can sweep all five
        protocols.
        """
        caps = protocol_capabilities(protocol)
        leader = (self.leader_site or self.sites[0]) if caps.leader_based else None
        return replace(
            self, protocol=protocol, leader_site=leader, name=name or self.name
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain, JSON/TOML-compatible dictionary representation."""
        data: dict[str, Any] = {
            "name": self.name,
            "protocol": self.protocol,
            "sites": list(self.sites),
            "latency": self.latency,
            "jitter_fraction": self.jitter_fraction,
            "duration_s": self.duration_s,
            "warmup_s": self.warmup_s,
            "seed": self.seed,
            "clocktime_interval_ms": self.clocktime_interval_ms,
            "wait_for_clock": self.wait_for_clock,
            "workload": asdict(self.workload),
        }
        if self.leader_site is not None:
            data["leader_site"] = self.leader_site
        if self.latency == "uniform":
            data["one_way_ms"] = self.one_way_ms
        if self.clocks:
            data["clocks"] = {site: asdict(clock) for site, clock in self.clocks}
        if self.faults:
            data["faults"] = [asdict(fault) for fault in self.faults]
        if self.cpu is not None:
            data["cpu"] = asdict(self.cpu)
        if self.cdf_sites:
            data["cdf_sites"] = list(self.cdf_sites)
        if self.record_history:
            data["record_history"] = True
        if self.sharding is not None:
            table: dict[str, Any] = {
                "shards": self.sharding.shards,
                "placement": self.sharding.placement,
            }
            if self.sharding.overrides:
                table["overrides"] = [
                    {
                        key: value
                        for key, value in asdict(override).items()
                        if value is not None
                    }
                    for override in self.sharding.overrides
                ]
            data["sharding"] = table
        if self.batching is not None:
            data["batching"] = asdict(self.batching)
        if self.processes is not None:
            data["processes"] = asdict(self.processes)
        if self.runtime is not None:
            data["runtime"] = asdict(self.runtime)
        # TOML has no null: drop None-valued optional keys everywhere (and
        # the clock-jump-only offset_ms when it is at its 0.0 default).
        data["workload"] = {
            key: value for key, value in data["workload"].items() if value is not None
        }
        if "faults" in data:
            data["faults"] = [
                {
                    key: value
                    for key, value in fault.items()
                    if value is not None and (key != "offset_ms" or value)
                }
                for fault in data["faults"]
            ]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a plain dictionary (inverse of :meth:`to_dict`)."""
        known = {
            "name", "protocol", "sites", "leader_site", "latency", "one_way_ms",
            "jitter_fraction", "clocks", "workload", "faults", "cpu",
            "duration_s", "warmup_s", "seed", "clocktime_interval_ms",
            "wait_for_clock", "cdf_sites", "record_history", "sharding",
            "batching", "processes", "runtime",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigurationError(f"unknown experiment spec keys: {unknown}")
        for required in ("name", "protocol", "sites"):
            if required not in data:
                raise ConfigurationError(f"experiment spec needs a {required!r} key")
        kwargs: dict[str, Any] = {
            key: data[key]
            for key in known
            - {
                "sites", "clocks", "workload", "faults", "cpu", "cdf_sites",
                "sharding", "batching", "processes", "runtime",
            }
            if key in data
        }
        kwargs["sites"] = tuple(data["sites"])
        if "cdf_sites" in data:
            kwargs["cdf_sites"] = tuple(data["cdf_sites"])
        clocks = data.get("clocks", {})
        if not isinstance(clocks, Mapping):
            raise ConfigurationError("clocks must map site name to a clock table")
        kwargs["clocks"] = tuple(
            (site, _build(ClockSpec, entry, f"clocks.{site}"))
            for site, entry in clocks.items()
        )
        if "workload" in data:
            kwargs["workload"] = _build(WorkloadSpec, data["workload"], "workload")
        faults = data.get("faults", [])
        if not isinstance(faults, Sequence) or isinstance(faults, (str, bytes)):
            raise ConfigurationError("faults must be a list of fault tables")
        kwargs["faults"] = tuple(
            _build(FaultSpec, entry, f"faults[{index}]")
            for index, entry in enumerate(faults)
        )
        if "cpu" in data:
            kwargs["cpu"] = _build(CpuSpec, data["cpu"], "cpu")
        if "sharding" in data:
            kwargs["sharding"] = _build_sharding(data["sharding"])
        if "batching" in data:
            kwargs["batching"] = _build(BatchingSpec, data["batching"], "batching")
        if "processes" in data:
            kwargs["processes"] = _build(ProcessesSpec, data["processes"], "processes")
        if "runtime" in data:
            kwargs["runtime"] = _build(RuntimeSpec, data["runtime"], "runtime")
        try:
            return cls(**kwargs)
        except TypeError as exc:
            # e.g. duration_s = "2" in a TOML file: the key is known but the
            # value's type breaks validation arithmetic.
            raise ConfigurationError(f"invalid experiment spec value: {exc}") from exc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a ``.toml`` or ``.json`` file."""
        path = Path(path)
        if not path.exists():
            raise ConfigurationError(f"spec file {path} does not exist")
        text = path.read_text()
        if path.suffix == ".toml":
            import tomllib

            try:
                data = tomllib.loads(text)
            except tomllib.TOMLDecodeError as exc:
                raise ConfigurationError(f"invalid TOML in {path}: {exc}") from exc
        elif path.suffix == ".json":
            try:
                data = json.loads(text)
            except json.JSONDecodeError as exc:
                raise ConfigurationError(f"invalid JSON in {path}: {exc}") from exc
        else:
            raise ConfigurationError(
                f"unsupported spec file extension {path.suffix!r}; use .toml or .json"
            )
        # A file may omit `name`; it then defaults to the file's stem.
        data.setdefault("name", path.stem)
        return cls.from_dict(data)


def _build_sharding(data: Any) -> ShardingSpec:
    """Build a :class:`ShardingSpec` (with nested overrides) from a mapping."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"sharding must be a table/mapping, got {type(data).__name__}"
        )
    unknown = sorted(set(data) - {"shards", "placement", "overrides"})
    if unknown:
        raise ConfigurationError(f"unknown keys in sharding: {unknown}")
    overrides = data.get("overrides", [])
    if not isinstance(overrides, Sequence) or isinstance(overrides, (str, bytes)):
        raise ConfigurationError("sharding.overrides must be a list of tables")
    kwargs: dict[str, Any] = {
        key: data[key] for key in ("shards", "placement") if key in data
    }
    kwargs["overrides"] = tuple(
        _build(ShardOverride, entry, f"sharding.overrides[{index}]")
        for index, entry in enumerate(overrides)
    )
    try:
        return ShardingSpec(**kwargs)
    except TypeError as exc:
        raise ConfigurationError(f"invalid value in sharding: {exc}") from exc


def _build(cls: type, data: Any, where: str) -> Any:
    """Instantiate a nested spec dataclass from a mapping with key checking."""
    if not isinstance(data, Mapping):
        raise ConfigurationError(f"{where} must be a table/mapping, got {type(data).__name__}")
    fields = {f for f in cls.__dataclass_fields__}  # type: ignore[attr-defined]
    unknown = sorted(set(data) - fields)
    if unknown:
        raise ConfigurationError(f"unknown keys in {where}: {unknown}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"invalid value in {where}: {exc}") from exc


__all__ = [
    "SCENARIOS",
    "APPS",
    "CLOCK_KINDS",
    "FAULT_KINDS",
    "PLACEMENTS",
    "ClockSpec",
    "WorkloadSpec",
    "FaultSpec",
    "BatchingSpec",
    "CpuSpec",
    "ProcessesSpec",
    "RuntimeSpec",
    "ShardOverride",
    "ShardingSpec",
    "ExperimentSpec",
]
