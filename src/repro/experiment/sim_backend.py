"""Deploy an experiment spec on the discrete-event simulator."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..checker.history import HistoryRecorder
from ..metrics.stats import LatencySummary
from ..sim.cluster import SimulatedCluster
from ..sim.environment import SimulationEnvironment
from ..sim.failures import FailureSchedule
from ..sim.network import NetworkOptions
from ..sim.node import CpuModel
from ..types import ReplicaId, ms_to_micros, seconds_to_micros
from ..workload.apps import state_machine_factory
from ..workload.scenarios import WorkloadHandle, build_workload
from .result import ExperimentResult, SiteResult
from .spec import CpuSpec, ExperimentSpec, FaultSpec


def _cpu_model(cpu: CpuSpec) -> CpuModel:
    return CpuModel(
        recv_fixed=cpu.recv_fixed,
        recv_per_byte=cpu.recv_per_byte,
        send_fixed=cpu.send_fixed,
        send_per_byte=cpu.send_per_byte,
        client_fixed=cpu.client_fixed,
    )


def _fault_schedule(spec: ExperimentSpec) -> FailureSchedule:
    cluster_spec = spec.cluster_spec()
    rid = lambda site: cluster_spec.by_site(site).replica_id
    schedule = FailureSchedule()
    for fault in spec.faults:
        at = seconds_to_micros(fault.at_s)
        if fault.kind == "crash":
            schedule.crash(at, rid(fault.site))
        elif fault.kind == "recover":
            schedule.recover(at, rid(fault.site), rejoin=fault.rejoin)
        elif fault.kind == "partition":
            heal_at = (
                seconds_to_micros(fault.heal_at_s) if fault.heal_at_s is not None else None
            )
            schedule.partition(at, rid(fault.site), rid(fault.peer), heal_at=heal_at)
        elif fault.kind == "isolate":
            for other in cluster_spec.sites:
                if other != fault.site:
                    heal_at = (
                        seconds_to_micros(fault.heal_at_s)
                        if fault.heal_at_s is not None
                        else None
                    )
                    schedule.partition(at, rid(fault.site), rid(other), heal_at=heal_at)
        elif fault.kind == "clock-jump":
            schedule.clock_jump(at, rid(fault.site), ms_to_micros(fault.offset_ms))
        else:  # pragma: no cover - FaultSpec validates kinds
            raise AssertionError(f"unhandled fault kind {fault.kind!r}")
    return schedule


@dataclass
class PreparedSimRun:
    """One cluster with its workload and faults armed, awaiting the clock.

    :meth:`SimBackend.prepare` returns one of these; running the (possibly
    shared) simulation environment for the spec's total runtime and calling
    :meth:`SimBackend.collect` turns it into an :class:`ExperimentResult`.
    Sharded deployments prepare several of these on a single environment so
    the shard groups' events interleave in one virtual timeline.
    """

    spec: ExperimentSpec
    cluster: SimulatedCluster
    handle: WorkloadHandle
    recorder: Optional[HistoryRecorder]


class SimBackend:
    """Runs experiments inside the deterministic discrete-event simulator."""

    name = "sim"

    def build_cluster(
        self, spec: ExperimentSpec, env: Optional[SimulationEnvironment] = None
    ) -> SimulatedCluster:
        """Wire the cluster a spec describes (without workload or faults)."""
        return SimulatedCluster(
            spec.cluster_spec(),
            spec.latency_matrix(),
            spec.protocol,
            spec.protocol_config(),
            seed=spec.seed,
            # Partitions buffer (and re-deliver on heal) rather than drop:
            # the paper assumes quasi-reliable TCP channels, where an outage
            # delays messages between correct replicas but never loses them.
            network_options=NetworkOptions(
                jitter_fraction=spec.jitter_fraction, partition_mode="buffer"
            ),
            clock_offsets=spec.clock_offsets(),
            clock_drift_ppm=spec.clock_drift_ppm(),
            cpu_model=_cpu_model(spec.cpu) if spec.cpu is not None else None,
            state_machine_factory=state_machine_factory(spec.workload.app),
            env=env,
            # Real command batching at the submission path (the CPU model's
            # own message-level batching composes with it, see sim.node).
            batching=spec.batching.options() if spec.batching is not None else None,
        )

    def prepare(
        self, spec: ExperimentSpec, env: Optional[SimulationEnvironment] = None
    ) -> PreparedSimRun:
        """Build the cluster and arm workload, history capture, and faults."""
        cluster = self.build_cluster(spec, env=env)
        recorder = HistoryRecorder(cluster) if spec.record_history else None
        handle = build_workload(cluster, spec.workload, warmup=spec.warmup_micros)
        if spec.faults:
            _fault_schedule(spec).install(cluster)
        return PreparedSimRun(spec=spec, cluster=cluster, handle=handle, recorder=recorder)

    def collect(self, prepared: PreparedSimRun) -> ExperimentResult:
        """Stop the workload and summarize one finished run."""
        spec, cluster, handle = prepared.spec, prepared.cluster, prepared.handle
        handle.stop()
        if not spec.faults:
            # Fault schedules may leave replicas crashed or partitioned
            # mid-run; prefix consistency is then checked by dedicated tests,
            # not by every experiment run.
            cluster.assert_consistent_order()

        sites: dict[str, SiteResult] = {}
        for replica_spec in cluster.spec.replicas:
            rid = replica_spec.replica_id
            committed = handle.collector.count(rid)
            summary: LatencySummary | None = None
            cdf = None
            if committed:
                summary = handle.collector.summary(rid)
                if replica_spec.site in spec.cdf_sites:
                    cdf = handle.collector.cdf_ms(rid)
            sites[replica_spec.site] = SiteResult(
                site=replica_spec.site,
                replica_id=rid,
                committed=committed,
                summary=summary,
                cdf_ms=cdf,
            )

        total = handle.collector.count()
        replica_metrics: dict[ReplicaId, dict[str, float]] = {}
        for rid, node in cluster.nodes.items():
            metrics: dict[str, float] = {
                "executed": float(node.replica.executed_count),
            }
            if spec.cpu is not None:
                metrics["utilization"] = round(
                    node.utilization(spec.total_runtime_micros), 3
                )
            replica_metrics[rid] = metrics

        return ExperimentResult(
            name=spec.name,
            protocol=spec.protocol,
            backend=self.name,
            duration_s=spec.duration_s,
            sites=sites,
            total_committed=total,
            throughput_kops=total / spec.duration_s / 1_000.0,
            replica_metrics=replica_metrics,
            metadata={"seed": spec.seed, "simulated_s": spec.warmup_s + spec.duration_s},
            history=(
                prepared.recorder.finish() if prepared.recorder is not None else None
            ),
        )

    def run(self, spec: ExperimentSpec) -> ExperimentResult:
        prepared = self.prepare(spec)
        prepared.cluster.run_for(spec.total_runtime_micros)
        return self.collect(prepared)


__all__ = ["PreparedSimRun", "SimBackend"]
