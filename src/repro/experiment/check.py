"""Run an experiment spec and check its history for linearizability.

This is the glue between the declarative experiment API and
:mod:`repro.checker`: deploy a spec (with history recording forced on), then
decide whether the recorded history is linearizable under the key-value
model.  The ``repro check`` CLI subcommand and the consistency test-suites
both go through :func:`check_spec`, so a scenario that passes here passes
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from ..checker.linearizability import check_history
from .deployment import run_spec
from .result import ExperimentResult
from .spec import ExperimentSpec


@dataclass
class CheckedRun:
    """One experiment run together with its consistency verdict.

    ``report`` is a :class:`~repro.checker.linearizability.CheckReport` for
    single-group runs and a :class:`~repro.shard.check.ShardedCheckReport`
    (same interface) for sharded ones.
    """

    result: ExperimentResult
    report: Any

    @property
    def linearizable(self) -> bool:
        return self.report.linearizable

    def describe(self) -> str:
        return (
            f"{self.result.name} [{self.result.backend}] "
            f"{self.result.protocol}: {self.report.describe()}"
        )

    def to_dict(self) -> dict[str, Any]:
        return {"result": self.result.to_dict(), "check": self.report.to_dict()}


def check_spec(
    spec: ExperimentSpec, backend: str = "sim", **options: Any
) -> CheckedRun:
    """Run *spec* on *backend* with history recording and check the history.

    Sharded specs are checked shard by shard (plus a cross-shard client-order
    pass); see :func:`repro.shard.check.check_sharded_spec`.
    """
    if spec.sharding is not None and spec.sharding.shards > 1:
        from ..shard.check import check_sharded_spec  # lazy: repro.shard builds on us

        return check_sharded_spec(spec, backend, **options)
    recorded = replace(spec, record_history=True)
    result = run_spec(recorded, backend, **options)
    assert result.history is not None  # record_history guarantees it
    return CheckedRun(result=result, report=check_history(result.history))


__all__ = ["CheckedRun", "check_spec"]
